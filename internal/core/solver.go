package core

import (
	"errors"
	"fmt"
	"math"

	"distlap/internal/linalg"
)

// Options configure a distributed solve.
type Options struct {
	// Tol is the target relative 2-norm residual ‖b − Lx‖/‖b‖; the
	// iteration count scales as log(1/Tol), the paper's log(1/ε) factor.
	Tol float64
	// MaxIter caps PCG iterations (0 selects a safe default).
	MaxIter int
	// Precond selects the preconditioner (nil = identity).
	Precond Preconditioner
	// Cancel, when non-nil, is polled at every iteration boundary; a
	// non-nil return aborts the solve with that error. Engine-internal
	// round barriers are additionally covered by the comm's own Cancel
	// hook (congest.Options.Cancel), so a cancelled request stops within
	// one scheduled round, not one PCG iteration.
	Cancel func() error
	// Verify, when non-nil, computes the true relative residual of a
	// candidate solution with local, zero-communication arithmetic. The
	// solver calls it whenever its distributed reductions claim
	// convergence: if the verified residual still exceeds Tol, the claim
	// was corrupted (fault-injected runs can corrupt the reduction tree)
	// and iteration continues instead of returning a silently wrong
	// vector. Reliable runs leave it nil — the distributed residual is
	// exact there, and charging zero rounds for a global check would
	// falsify the cost model.
	Verify func(x []float64) float64
}

// Result reports a distributed solve.
type Result struct {
	X           []float64
	Iterations  int
	Residual    float64 // achieved relative residual
	Rounds      int     // total communication rounds measured on the comm
	SetupRounds int     // rounds consumed before the first iteration
	// Metrics is the structured communication cost of the run: per-engine
	// totals plus the per-phase breakdown when the comm was traced with a
	// queryable collector. Rounds == Metrics.TotalRounds(); prefer Metrics
	// over the bare counters above.
	Metrics Metrics
}

// ErrBadTol is returned for nonsensical tolerances.
var ErrBadTol = errors.New("core: tolerance must be in (0, 1)")

// Solve runs the distributed preconditioned conjugate-gradient Laplacian
// solver over the given communication substrate. The right-hand side must
// (approximately) sum to zero; the returned solution is mean-centered.
//
// Every numerical reduction goes through comm.GlobalSums, every
// matrix-vector product through comm.MatVecLaplacian, and preconditioner
// applications through tree sweeps — so Result.Rounds is the measured
// CONGEST/HYBRID round complexity of the whole solve (Theorem 28's
// #iterations × Q(p) structure, with Q measured rather than assumed).
func Solve(c Comm, b []float64, opts Options) (*Result, error) {
	g := c.Graph()
	n := g.N()
	if len(b) != n {
		return nil, fmt.Errorf("core: b has %d entries for n=%d", len(b), n)
	}
	if opts.Tol <= 0 || opts.Tol >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadTol, opts.Tol)
	}
	pre := opts.Precond
	if pre == nil {
		pre = &IdentityPrecond{}
	}
	tr := c.Tracer()
	tr.Begin("solve")
	defer tr.End("solve")
	tr.Begin("precond-setup")
	err := pre.Setup(c)
	tr.End("precond-setup")
	if err != nil {
		return nil, fmt.Errorf("core: precond setup: %w", err)
	}
	return iterate(c, b, pre, opts)
}

// Iterate runs the per-request half of a solve on a preconditioner whose
// Setup already ran (a prepared Instance, or any caller that amortizes
// setup across right-hand sides). It charges only iteration cost — no
// construction phase ever appears in its trace; setup phases belong to
// Prepare. pre must be non-nil and already set up against a comm over the
// same graph; its Apply must be read-only (the contract every shipped
// preconditioner satisfies after Setup).
func Iterate(c Comm, b []float64, pre Preconditioner, opts Options) (*Result, error) {
	n := c.Graph().N()
	if len(b) != n {
		return nil, fmt.Errorf("core: b has %d entries for n=%d", len(b), n)
	}
	if opts.Tol <= 0 || opts.Tol >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadTol, opts.Tol)
	}
	if pre == nil {
		pre = &IdentityPrecond{}
	}
	tr := c.Tracer()
	tr.Begin("solve")
	defer tr.End("solve")
	return iterate(c, b, pre, opts)
}

// iterate is the shared iteration half of Solve and Iterate: from centering
// b through PCG convergence. The caller holds the "solve" span open and has
// validated b and Tol; pre is set up.
func iterate(c Comm, b []float64, pre Preconditioner, opts Options) (*Result, error) {
	g := c.Graph()
	n := g.N()
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 40*n + 200
	}
	tr := c.Tracer()

	// Center b: one global sum, then a local subtraction (n is common
	// knowledge).
	tr.Begin("norms")
	sums, err := c.GlobalSums(b)
	if err != nil {
		tr.End("norms")
		return nil, err
	}
	bc := linalg.Copy(b)
	mean := sums[0] / float64(n)
	for i := range bc {
		bc[i] -= mean
	}
	bsq := make([]float64, n)
	for i := range bc {
		bsq[i] = bc[i] * bc[i]
	}
	sums, err = c.GlobalSums(bsq)
	tr.End("norms")
	if err != nil {
		return nil, err
	}
	bNorm := math.Sqrt(sums[0])
	setupRounds := c.Rounds()
	x := make([]float64, n)
	if bNorm == 0 { //distlint:allow floateq exact-zero guard: b == 0 has the exact solution x == 0
		return &Result{X: x, Rounds: c.Rounds(), SetupRounds: setupRounds,
			Metrics: c.CollectMetrics()}, nil
	}

	r := linalg.Copy(bc)
	tr.Begin("precond")
	z, err := pre.Apply(c, r)
	tr.End("precond")
	if err != nil {
		return nil, err
	}
	p := linalg.Copy(z)
	// Iteration scratch, allocated once per solve and reused every
	// iteration: the dot-product operand and the batched-reduction pair.
	// bsq is dead after the norm setup above, so it doubles as prod.
	prod := bsq
	rr := make([]float64, n)
	rzv := make([]float64, n)
	tr.Begin("reduce")
	rz, err := dotVia(c, prod, r, z)
	tr.End("reduce")
	if err != nil {
		return nil, err
	}
	for it := 1; it <= maxIter; it++ {
		if opts.Cancel != nil {
			if err := opts.Cancel(); err != nil {
				return nil, err
			}
		}
		tr.Begin("matvec")
		lp, err := c.MatVecLaplacian(p)
		tr.End("matvec")
		if err != nil {
			return nil, err
		}
		tr.Begin("reduce")
		plp, err := dotVia(c, prod, p, lp)
		tr.End("reduce")
		if err != nil {
			return nil, err
		}
		if plp <= 0 || math.IsNaN(plp) {
			return nil, fmt.Errorf("%w: curvature %g at iteration %d",
				linalg.ErrNoConverge, plp, it)
		}
		alpha := rz / plp
		linalg.AXPY(alpha, p, x)
		linalg.AXPY(-alpha, lp, r)

		tr.Begin("precond")
		z, err = pre.Apply(c, r)
		tr.End("precond")
		if err != nil {
			return nil, err
		}
		// Batch the two reductions of the tail of the iteration into one
		// pipelined aggregation.
		for i := range r {
			rr[i] = r[i] * r[i]
			rzv[i] = r[i] * z[i]
		}
		tr.Begin("reduce")
		pair, err := c.GlobalSums(rr, rzv)
		tr.End("reduce")
		if err != nil {
			return nil, err
		}
		res := math.Sqrt(pair[0]) / bNorm
		tr.Gauge("pcg.residual", it, res, c.Rounds())
		if res <= opts.Tol {
			xc := linalg.Copy(x)
			linalg.CenterMean(xc)
			if opts.Verify != nil {
				if vres := opts.Verify(xc); vres > opts.Tol {
					// The distributed reduction claims convergence but the
					// locally verified residual disagrees: a fault corrupted
					// the aggregation. Reject the claim and keep iterating —
					// never return a silently wrong vector.
					tr.Counter("pcg.verify-rejects", 1)
					tr.Gauge("pcg.verified", it, vres, c.Rounds())
				} else {
					tr.Gauge("pcg.verified", it, vres, c.Rounds())
					return &Result{
						X: xc, Iterations: it, Residual: vres,
						Rounds: c.Rounds(), SetupRounds: setupRounds,
						Metrics: c.CollectMetrics(),
					}, nil
				}
			} else {
				return &Result{
					X: xc, Iterations: it, Residual: res,
					Rounds: c.Rounds(), SetupRounds: setupRounds,
					Metrics: c.CollectMetrics(),
				}, nil
			}
		}
		rzNew := pair[1]
		if rzNew <= 0 || math.IsNaN(rzNew) {
			return nil, fmt.Errorf("%w: rz=%g at iteration %d (preconditioner not SPD?)",
				linalg.ErrNoConverge, rzNew, it)
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, fmt.Errorf("%w after %d iterations", linalg.ErrNoConverge, maxIter)
}

// dotVia computes a global inner product through the comm, building the
// elementwise product in the caller's scratch buffer (no allocation).
func dotVia(c Comm, prod, a, b []float64) (float64, error) {
	linalg.MulInto(prod, a, b)
	sums, err := c.GlobalSums(prod)
	if err != nil {
		return 0, err
	}
	return sums[0], nil
}

// Mode selects a standard solver configuration for experiments and CLIs.
type Mode string

// Standard modes.
const (
	// ModeUniversal: Supported-CONGEST with per-cluster trees + shortcut-
	// style aggregation (Theorem 2, first bullet).
	ModeUniversal Mode = "universal"
	// ModeCongest: standard CONGEST (pays BFS/shortcut construction).
	ModeCongest Mode = "congest"
	// ModeBaseline: the existential baseline — everything over one global
	// BFS tree (the [18]-style √n + D shape).
	ModeBaseline Mode = "baseline"
	// ModeHybrid: CONGEST + NCC (Theorem 3).
	ModeHybrid Mode = "hybrid"
)
