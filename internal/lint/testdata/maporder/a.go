// Package maporder is a distlint fixture: maporder violations alongside the
// blessed collect-then-sort patterns the analyzer must accept.
package maporder

import "sort"

// Bad ranges directly over a map: flagged.
func Bad(m map[int]string) int {
	total := 0
	for k := range m { // violation: direct map range
		total += k
	}
	return total
}

// Collect gathers keys and sorts them before use: not flagged.
func Collect(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CollectFiltered filters while collecting, then sorts: not flagged.
func CollectFiltered(m map[int]bool) []int {
	var keys []int
	for k := range m {
		if m[k] {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// CollectNoSort collects but never sorts: flagged.
func CollectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m { // violation: collected keys are never sorted
		keys = append(keys, k)
	}
	return keys
}

// HelperSorted uses a package-local sort helper: not flagged.
func HelperSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(a []int) { sort.Ints(a) }

// SliceRange ranges over a slice: never flagged.
func SliceRange(a []int) int {
	s := 0
	for _, v := range a {
		s += v
	}
	return s
}

// CollectSortOuter collects inside a conditional block and sorts at the end
// of the function: accepted by the function-level scan (previously a false
// positive of the block-local recognizer).
func CollectSortOuter(m map[int]bool, extra bool) []int {
	var keys []int
	if extra {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// CollectInLoopSortAfter collects across loop iterations and sorts once
// after the loop: accepted by the function-level scan.
func CollectInLoopSortAfter(ms []map[int]bool) []int {
	var keys []int
	for _, m := range ms {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// CollectCanonical orders through a helper whose name the heuristic cannot
// match: flagged by default, accepted when "canonicalize" is whitelisted
// through MapOrderSortFuncs.
func CollectCanonical(m map[int]bool) []int {
	var keys []int
	for k := range m { // violation unless canonicalize is whitelisted
		keys = append(keys, k)
	}
	canonicalize(keys)
	return keys
}

func canonicalize(a []int) { sort.Ints(a) }

// SortBeforeNotAfter sorts before the loop only: still flagged (the scan
// looks strictly after the collecting loop).
func SortBeforeNotAfter(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	sort.Ints(keys)
	for k := range m { // violation: nothing sorts after the collection
		keys = append(keys, k)
	}
	return keys
}
