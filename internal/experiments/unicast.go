package experiments

import (
	"distlap/internal/congest"
	"distlap/internal/graph"
	"distlap/internal/shortcut"
	"distlap/internal/simtrace"
)

// E12 — Theorem 25 + Lemma 24: the any-to-any-cast completion time tracks
// the shortcut-quality bracket (Theorem 25's characterization τ = Θ̃(SQ)),
// and a p-congested witness family decomposes into few node-disjoint
// classes (Lemma 24's O(p log k), certified by greedy coloring).
func E12(cfg Config) (*Table, error) {
	quick := cfg.Quick
	fams := []namedGraph{
		{name: "grid", mk: func() *graph.Graph { return graph.Grid(8, 8) }},
		{name: "widegrid", mk: func() *graph.Graph { return graph.Grid(3, 21) }},
		{name: "tree", mk: func() *graph.Graph { return graph.CompleteTree(2, 6) }},
		{name: "expander", mk: func() *graph.Graph { return graph.RandomRegular(64, 4, 7) }},
		{name: "barbell", mk: func() *graph.Graph { return graph.Barbell(12, 2) }},
	}
	if quick {
		fams = fams[:3]
	}
	t := &Table{
		ID:     "E12",
		Title:  "any-to-any-cast vs shortcut quality, witness decomposition (Thm. 25, Lem. 24)",
		Header: []string{"family", "k", "makespan", "Q̂ bracket", "p", "classes", "p·log2(k)"},
		Notes:  "makespan stays within the [D̃, Q̂] bracket's order; greedy classes ≈ p·log k or better",
	}
	var pts []point
	for _, f := range fams {
		pts = append(pts, func(tr simtrace.Collector) ([][]string, error) {
			g := f.mk()
			n := g.N()
			k := isqrt(n)
			// Sources: the k lowest-ID nodes; sinks: the k highest (a
			// long-range demand pattern).
			sources := make([]graph.NodeID, k)
			sinks := make([]graph.NodeID, k)
			for i := 0; i < k; i++ {
				sources[i] = i
				sinks[i] = n - 1 - i
			}
			nw := congest.NewNetwork(g, congest.Options{Seed: 5, Trace: tr})
			sol, _, err := shortcut.SolveAnyToAnyCast(nw, sources, sinks)
			if err != nil {
				return nil, err
			}
			est, err := shortcut.EstimateSQ(g, 1)
			if err != nil {
				return nil, err
			}
			// Witness family: the connecting paths themselves.
			w := &shortcut.WitnessFamily{}
			for i, path := range sol.Paths {
				nodes := []graph.NodeID{sources[i]}
				v := sources[i]
				for _, id := range path {
					v = g.Other(id, v)
					nodes = append(nodes, v)
				}
				w.Paths = append(w.Paths, nodes)
			}
			p := w.NodeCongestion()
			classes := w.DecomposeDisjoint()
			if err := w.Validate(g, classes); err != nil {
				return nil, err
			}
			return row(
				f.name, itoa(k), itoa(sol.Makespan),
				"["+itoa(est.Lower)+","+itoa(est.Upper)+"]",
				itoa(p), itoa(len(classes)), itoa(p*log2(k)),
			), nil
		})
	}
	rows, err := runPoints(cfg, pts)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
