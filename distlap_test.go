package distlap_test

import (
	"math"
	"testing"

	"distlap"
)

func TestFacadeSolveRoundtrip(t *testing.T) {
	var g *distlap.Graph
	for _, f := range distlap.Families() {
		if f.Name == "grid" {
			g = f.Make(64)
		}
	}
	if g == nil {
		t.Fatal("grid family missing")
	}
	b := make([]float64, g.N())
	b[0], b[g.N()-1] = 1, -1
	res, err := distlap.Solve(g, b, distlap.ModeUniversal, 1e-8, 1)
	if err != nil {
		t.Fatal(err)
	}
	xStar, err := distlap.ExactSolve(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if e := distlap.RelativeLError(g, res.X, xStar); e > 1e-5 {
		t.Fatalf("L-error %g", e)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds measured")
	}
}

func TestFacadeModesAgree(t *testing.T) {
	g := distlap.NewGraph(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 1)
	b := []float64{1, 0, -1}
	var solutions [][]float64
	for _, mode := range []distlap.Mode{
		distlap.ModeUniversal, distlap.ModeCongest, distlap.ModeBaseline, distlap.ModeHybrid,
	} {
		res, err := distlap.Solve(g, b, mode, 1e-10, 1)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		solutions = append(solutions, res.X)
	}
	for i := 1; i < len(solutions); i++ {
		for j := range solutions[0] {
			if math.Abs(solutions[i][j]-solutions[0][j]) > 1e-6 {
				t.Fatalf("mode %d disagrees at %d", i, j)
			}
		}
	}
}

func TestFacadeAggregateParts(t *testing.T) {
	g := distlap.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	inst := &distlap.PartwiseInstance{
		Parts:  [][]int{{0, 1, 2}, {1, 2, 3}},
		Values: [][]int64{{5, 2, 9}, {1, 7, 3}},
	}
	out, rounds, err := distlap.AggregateParts(g, inst, distlap.AggMin, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 1 {
		t.Fatalf("out=%v", out)
	}
	if rounds <= 0 {
		t.Fatal("no rounds charged for a congested instance")
	}
}

func TestFacadeShortcutQuality(t *testing.T) {
	var g *distlap.Graph
	for _, f := range distlap.Families() {
		if f.Name == "expander" {
			g = f.Make(64)
		}
	}
	est, err := distlap.EstimateShortcutQuality(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lower > est.Upper || est.Upper <= 0 {
		t.Fatalf("bracket [%d, %d]", est.Lower, est.Upper)
	}
}

func TestFacadeMST(t *testing.T) {
	g := distlap.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(0, 3, 10)
	res, err := distlap.MinimumSpanningTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 6 || len(res.Edges) != 3 {
		t.Fatalf("mst weight=%d edges=%d", res.Weight, len(res.Edges))
	}
}

func TestFacadeFlowAndResistance(t *testing.T) {
	g := distlap.NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	r, err := distlap.EffectiveResistance(g, 0, 2, distlap.ModeUniversal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-5 {
		t.Fatalf("R_eff=%v, want 2", r)
	}
	flow, err := distlap.Flow(g, 0, 2, distlap.ModeUniversal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flow.EdgeCurrent) != 2 {
		t.Fatal("missing currents")
	}
}

func TestFacadeSolveSDD(t *testing.T) {
	g := distlap.NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	res, err := distlap.SolveSDD(g, []int64{1, 0, 1}, []float64{1, 0, 1}, distlap.ModeUniversal, 1e-9, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric system: x0 == x2.
	if math.Abs(res.X[0]-res.X[2]) > 1e-6 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestFacadeMaxFlow(t *testing.T) {
	g := distlap.NewGraph(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 3, 3)
	res, err := distlap.MaxFlow(g, 0, 3, 0.1, distlap.ModeUniversal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 || res.ExactValue != 5 {
		t.Fatalf("flow=%d exact=%d", res.Value, res.ExactValue)
	}
}
