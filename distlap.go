// Package distlap is the public facade of the distributed Laplacian solver
// library, a from-scratch reproduction of "Almost Universally Optimal
// Distributed Laplacian Solvers via Low-Congestion Shortcuts"
// (Anagnostides ⓡ Lenzen ⓡ Haeupler ⓡ Zuzic ⓡ Gouleakis, DISC 2022).
//
// The facade re-exports the pieces a downstream user needs:
//
//   - graph construction (NewGraph, generators via Families),
//   - the measured communication models (Mode values) and the one-call
//     distributed solver (Solve),
//   - the congested part-wise aggregation primitive (AggregateParts), the
//     paper's central contribution, and
//   - the shortcut-quality estimator (EstimateShortcutQuality).
//
// Everything is implemented on a deterministic CONGEST / NCC / HYBRID
// simulator that physically moves O(log n)-bit messages and measures
// synchronous rounds; see DESIGN.md for the architecture and
// EXPERIMENTS.md for the paper-claim reproduction tables.
package distlap

import (
	"distlap/internal/apps"
	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/linalg"
	"distlap/internal/partwise"
	"distlap/internal/shortcut"
)

// Graph is a weighted undirected multigraph with dense integer node IDs.
type Graph = graph.Graph

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Families returns the named standard graph generators (path, grid,
// widegrid, tree, expander), each parameterized by an approximate size.
func Families() []graph.Family { return graph.StandardFamilies() }

// Mode selects the communication model a solve runs in.
type Mode = core.Mode

// Communication models (see Theorems 2 and 3 of the paper).
const (
	// ModeUniversal is Supported-CONGEST with shortcut-style aggregation —
	// the almost universally optimal configuration.
	ModeUniversal = core.ModeUniversal
	// ModeCongest is standard CONGEST (construction costs charged).
	ModeCongest = core.ModeCongest
	// ModeBaseline aggregates everything over one global BFS tree — the
	// existentially optimal (√n + D style) baseline.
	ModeBaseline = core.ModeBaseline
	// ModeHybrid augments CONGEST with the node-capacitated clique.
	ModeHybrid = core.ModeHybrid
)

// Result reports a distributed Laplacian solve: the solution, iteration
// count, achieved residual and the measured communication rounds.
type Result = core.Result

// Solve solves the Laplacian system L_g x = b to relative residual eps in
// the given communication model and reports the measured round complexity.
// b must sum to (approximately) zero; the solution is mean-centered.
func Solve(g *Graph, b []float64, mode Mode, eps float64, seed int64) (*Result, error) {
	res, _, err := core.SolveOnGraph(g, b, mode, eps, seed)
	return res, err
}

// ExactSolve solves L_g x = b directly (dense elimination; ground truth
// for small systems).
func ExactSolve(g *Graph, b []float64) ([]float64, error) {
	return linalg.NewLaplacian(g).SolveExact(b)
}

// RelativeLError returns ‖x − xStar‖_L / ‖xStar‖_L, the paper's accuracy
// metric.
func RelativeLError(g *Graph, x, xStar []float64) float64 {
	return linalg.NewLaplacian(g).RelativeLError(x, xStar)
}

// PartwiseInstance is a (possibly congested) part-wise aggregation
// instance: parts with per-member values (Definitions 4 and 13).
type PartwiseInstance = partwise.Instance

// AggSpec names an aggregation function with its identity element.
type AggSpec = partwise.AggSpec

// Standard aggregation specs.
var (
	AggSum = partwise.Sum
	AggMin = partwise.Min
	AggMax = partwise.Max
	AggAnd = partwise.And
	AggOr  = partwise.Or
)

// AggregateParts solves a p-congested part-wise aggregation instance on g
// in Supported-CONGEST via the paper's layered-graph reduction and returns
// the per-part aggregates together with the measured round count.
func AggregateParts(g *Graph, inst *PartwiseInstance, spec AggSpec, seed int64) ([]int64, int, error) {
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: seed})
	out, err := partwise.NewLayeredSolver(seed).Solve(nw, inst, spec)
	if err != nil {
		return nil, 0, err
	}
	words := make([]int64, len(out))
	for i, w := range out {
		words[i] = int64(w)
	}
	return words, nw.Rounds(), nil
}

// ShortcutQuality is the empirical shortcut-quality bracket [Lower, Upper]
// of a graph (Definition 7, bracketed as described in DESIGN.md).
type ShortcutQuality = shortcut.QualityEstimate

// EstimateShortcutQuality brackets SQ(g) over the adversarial partition
// suite.
func EstimateShortcutQuality(g *Graph, seed int64) (ShortcutQuality, error) {
	return shortcut.EstimateSQ(g, seed)
}

// MSTResult reports a distributed minimum-spanning-tree computation.
type MSTResult = apps.MSTResult

// MinimumSpanningTree computes an MST distributedly with Borůvka phases
// over part-wise aggregation in Supported-CONGEST, returning the measured
// round count in the result.
func MinimumSpanningTree(g *Graph, seed int64) (*MSTResult, error) {
	nw := congest.NewNetwork(g, congest.Options{Supported: true, Seed: seed})
	return apps.MST(nw, partwise.NewShortcutSolver())
}

// ElectricalFlow reports an s-t unit electrical flow (potentials, currents,
// effective resistance) computed through the distributed solver.
type ElectricalFlow = apps.FlowResult

// Flow computes the unit s-t electrical flow on g in the given model.
func Flow(g *Graph, s, t int, mode Mode, seed int64) (*ElectricalFlow, error) {
	el := &apps.Electrical{G: g, Mode: mode, Seed: seed}
	return el.Flow(s, t)
}

// EffectiveResistance returns the s-t effective resistance of g.
func EffectiveResistance(g *Graph, s, t int, mode Mode, seed int64) (float64, error) {
	el := &apps.Electrical{G: g, Mode: mode, Seed: seed}
	return el.EffectiveResistance(s, t)
}

// SolveSDD solves the symmetric diagonally-dominant system
// (L_g + diag(extra)) x = b via the grounded-Laplacian reduction — the
// standard extension of the Laplacian paradigm to SDD matrices (heat
// diffusion, regularized regression, PageRank-style systems). extra must
// be nonnegative integers with at least one positive entry; b may have
// any sum.
func SolveSDD(g *Graph, extra []int64, b []float64, mode Mode, eps float64, seed int64) (*Result, error) {
	return core.SolveSDD(g, extra, b, mode, eps, seed)
}

// MaxFlow approximates the s-t maximum flow via electrical-flow
// multiplicative weights (the §5 application: every MWU iteration is one
// distributed Laplacian solve), returning the approximate value, the exact
// Edmonds–Karp reference, and the total measured rounds.
func MaxFlow(g *Graph, s, t int, eps float64, mode Mode, seed int64) (*apps.ApproxFlowResult, error) {
	a := &apps.ApproxMaxFlow{Mode: mode, Epsilon: eps, Seed: seed}
	return a.Run(g, s, t)
}

// SolveChebyshev solves L_g x = b by distributed Chebyshev iteration — the
// alternative iteration with no per-iteration global reductions (one
// residual check every few iterations), which wins on high-diameter
// topologies. Pass lo = hi = 0 for safe automatic spectral bounds.
func SolveChebyshev(g *Graph, b []float64, mode Mode, eps, lo, hi float64, seed int64) (*Result, error) {
	c, err := core.NewComm(g, mode, seed)
	if err != nil {
		return nil, err
	}
	return core.SolveChebyshev(c, b, core.ChebyshevOptions{Tol: eps, Lo: lo, Hi: hi})
}

// SpectralPartition approximates the Fiedler vector by inverse power
// iteration (one distributed Laplacian solve per step) and returns the
// sign-cut bipartition with its measured rounds — spectral clustering
// through the solver.
func SpectralPartition(g *Graph, mode Mode, seed int64) (*apps.SpectralResult, error) {
	sp := &apps.SpectralPartitioner{Mode: mode, Seed: seed}
	return sp.Partition(g)
}
