// Package ncc implements the node-capacitated clique model (paper §2,
// following Augustine et al. [2]): in every round each node may exchange
// O(log n)-bit messages with O(log n) arbitrary nodes; messages beyond a
// receiver's capacity are dropped. The engine schedules message batches
// under per-node send and receive caps and measures rounds, and the
// Aggregate method realizes Lemma 26: any p-congested part-wise aggregation
// solved in O(p + log n) NCC rounds.
//
// Determinism obligations: batch scheduling iterates nodes and messages in
// stable ID order, round counters are written only by this package's
// delivery primitives (metricsintegrity), and an engine — like its HYBRID
// partner network — is single-goroutine for its whole lifetime
// (DESIGN.md §7).
package ncc

import (
	"errors"
	"fmt"
	"sort"

	"distlap/internal/congest"
	"distlap/internal/faultinject"
	"distlap/internal/graph"
	"distlap/internal/simtrace"
)

// Message is one O(log n)-bit message between arbitrary nodes.
type Message struct {
	From, To graph.NodeID
	Payload  congest.Word
}

// Network is an NCC communication network over n nodes.
type Network struct {
	n        int
	cap      int
	rounds   int
	messages int64
	trace    simtrace.Collector

	// Fault-injection state (all zero/nil on reliable networks).
	faults      *faultinject.Plan
	fstats      faultinject.Stats
	crashedSeen map[graph.NodeID]bool
}

// ErrNoNodes is returned for empty networks.
var ErrNoNodes = errors.New("ncc: network has no nodes")

// NewNetwork returns an NCC network over n nodes with the standard
// per-node capacity ceil(log2 n) (minimum 1).
func NewNetwork(n int) *Network {
	return NewNetworkWith(n, nil)
}

// NewNetworkWith is NewNetwork with a trace collector attached (nil selects
// simtrace.Nop). The collector records rounds, clique deliveries, and the
// ncc.sends / ncc.overloads / ncc.drops counters; it never influences
// scheduling or the metrics.
func NewNetworkWith(n int, tr simtrace.Collector) *Network {
	return &Network{n: n, cap: log2ceil(n), trace: simtrace.OrNop(tr)}
}

// Trace returns the network's trace collector (never nil).
func (nw *Network) Trace() simtrace.Collector { return nw.trace }

// SetFaults attaches a deterministic fault plan (nil = reliable). Set it
// before the first Deliver; decisions are pure functions of (plan seed,
// round, sender, receiver), so a faulty clique run replays byte-identically
// (DESIGN.md §9).
func (nw *Network) SetFaults(p *faultinject.Plan) { nw.faults = p }

// FaultStats returns the faults injected so far (zero on reliable
// networks).
func (nw *Network) FaultStats() faultinject.Stats { return nw.fstats }

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// Capacity returns the per-node, per-round message capacity.
func (nw *Network) Capacity() int { return nw.cap }

// Rounds returns the rounds elapsed.
func (nw *Network) Rounds() int { return nw.rounds }

// Messages returns the total messages delivered.
func (nw *Network) Messages() int64 { return nw.messages }

// Reset zeroes the metrics.
func (nw *Network) Reset() { nw.rounds, nw.messages = 0, 0 }

// Deliver schedules all messages under the per-node send and receive caps
// (FIFO per sender, senders scanned in ID order — deterministic) and
// invokes recv for each delivery in delivery order. Because the scheduler
// never oversubscribes a receiver, no messages are dropped; the measured
// rounds are what an actual NCC execution with this schedule would take.
// Returns the number of rounds consumed.
func (nw *Network) Deliver(msgs []Message, recv func(Message)) (int, error) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= nw.n || m.To < 0 || m.To >= nw.n {
			return 0, fmt.Errorf("ncc: %w: message %d->%d with n=%d",
				graph.ErrNodeRange, m.From, m.To, nw.n)
		}
	}
	if nw.faults != nil {
		return nw.deliverFaulty(msgs, recv)
	}
	// FIFO queue per sender.
	queues := make(map[graph.NodeID][]Message)
	var senders []graph.NodeID
	for _, m := range msgs {
		if len(queues[m.From]) == 0 {
			senders = append(senders, m.From)
		}
		queues[m.From] = append(queues[m.From], m)
	}
	sort.Ints(senders)
	nw.trace.Counter("ncc.sends", int64(len(msgs)))
	remaining := len(msgs)
	used := 0
	for remaining > 0 {
		used++
		recvLoad := make(map[graph.NodeID]int)
		var delivered []Message
		for _, s := range senders {
			q := queues[s]
			sent := 0
			kept := q[:0]
			for _, m := range q {
				if sent < nw.cap && recvLoad[m.To] < nw.cap {
					recvLoad[m.To]++
					sent++
					delivered = append(delivered, m)
					remaining--
				} else {
					kept = append(kept, m)
				}
			}
			queues[s] = append([]Message(nil), kept...)
		}
		if len(delivered) == 0 {
			nw.rounds++
			nw.trace.Rounds(simtrace.EngineNCC, 1)
			return used, errors.New("ncc: scheduler made no progress")
		}
		nw.messages += int64(len(delivered))
		nw.trace.Messages(simtrace.EngineNCC, simtrace.NoEdge, int64(len(delivered)))
		for _, m := range delivered {
			nw.trace.NodeWords(simtrace.EngineNCC, m.From, m.To, 1)
		}
		// The round is charged after its deliveries so a round-series sink
		// attributes this batch's messages to this round boundary.
		nw.rounds++
		nw.trace.Rounds(simtrace.EngineNCC, 1)
		if remaining > 0 {
			// Messages deferred past this round were blocked by a send or
			// receive cap: the scheduler's congestion signal.
			nw.trace.Counter("ncc.overloads", int64(remaining))
		}
		for _, m := range delivered {
			recv(m)
		}
	}
	return used, nil
}

// ChargeRounds adds idle rounds (for composed accounting).
func (nw *Network) ChargeRounds(r int) {
	if r > 0 {
		nw.rounds += r
		nw.trace.Rounds(simtrace.EngineNCC, r)
	}
}

func log2ceil(n int) int {
	k := 1
	for p := 2; p < n; p *= 2 {
		k++
	}
	return k
}

// DeliverUnscheduled models the raw NCC semantics of §2: every message is
// transmitted in a single round with no coordination, and each receiver
// keeps only an adversarially-selected subset of at most Capacity messages
// (here: the lowest sender IDs, a deterministic adversary) — the rest are
// dropped. It exists for failure-injection tests that demonstrate why the
// Lemma 26 aggregation must schedule under the caps; production algorithms
// use Deliver.
//
// Returns the number of dropped messages. Always charges exactly one round.
func (nw *Network) DeliverUnscheduled(msgs []Message, recv func(Message)) (dropped int, err error) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= nw.n || m.To < 0 || m.To >= nw.n {
			return 0, fmt.Errorf("ncc: %w: message %d->%d with n=%d",
				graph.ErrNodeRange, m.From, m.To, nw.n)
		}
	}
	nw.trace.Counter("ncc.sends", int64(len(msgs)))
	// Senders may emit at most cap messages; excess sends are dropped at
	// the source (in FIFO order).
	sendLoad := make(map[graph.NodeID]int)
	byReceiver := make(map[graph.NodeID][]Message)
	for _, m := range msgs {
		if sendLoad[m.From] >= nw.cap {
			dropped++
			continue
		}
		sendLoad[m.From]++
		byReceiver[m.To] = append(byReceiver[m.To], m)
	}
	var receivers []graph.NodeID
	for to := range byReceiver {
		receivers = append(receivers, to)
	}
	sort.Ints(receivers)
	deliveredCount := int64(0)
	for _, to := range receivers {
		inbox := byReceiver[to]
		sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
		for i, m := range inbox {
			if i >= nw.cap {
				dropped += len(inbox) - i
				break
			}
			nw.messages++
			deliveredCount++
			nw.trace.NodeWords(simtrace.EngineNCC, m.From, m.To, 1)
			recv(m)
		}
	}
	nw.trace.Messages(simtrace.EngineNCC, simtrace.NoEdge, deliveredCount)
	// As in Deliver, the single round is charged after its deliveries.
	nw.rounds++
	nw.trace.Rounds(simtrace.EngineNCC, 1)
	if dropped > 0 {
		nw.trace.Counter("ncc.drops", int64(dropped))
	}
	return dropped, nil
}
