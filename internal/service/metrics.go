package service

// The serving path's production metrics (DESIGN.md §6, serving side):
// every API request is classified into a small fixed endpoint set and
// recorded — request counts, status classes, in-flight, latency
// histograms — alongside the engine cost its response carried (rounds,
// messages, recovery attempts, observed faults, degradations) and the
// instance cache's accounting (hits, misses, evictions, byte occupancy).
// GET /metrics exposes the registry as Prometheus text with the
// deterministic section first (obs.WallClockMarker splits it); GET
// /v1/statusz exposes a JSON snapshot with the same deterministic /
// wall-clock field split plus per-endpoint latency quantiles.
//
// The observability endpoints themselves (metrics, statusz, healthz) are
// not instrumented: a scrape must never perturb the numbers it reads, or
// two daemons scraped at different cadences would diverge on an otherwise
// identical request sequence.

import (
	"bytes"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"distlap"
	"distlap/internal/obs"
)

// Observability endpoint paths (healthzPath lives in harden.go).
const (
	metricsPath = "/metrics"
	statuszPath = "/v1/statusz"
)

// observabilityPath reports whether a request path names a scrape / probe
// endpoint — these bypass the admission gate (harden.go) and are never
// instrumented or access-logged.
func observabilityPath(p string) bool {
	return p == metricsPath || p == statuszPath || p == healthzPath
}

// Metric endpoint labels: the closed set of API endpoints the middleware
// classifies requests into.
const (
	epLoad    = "load"
	epList    = "list"
	epEvict   = "evict"
	epSolve   = "solve"
	epFlow    = "flow"
	epMST     = "mst"
	epMetrics = "metrics"
	epStatusz = "statusz"
	epHealthz = "healthz"
	epOther   = "other"
)

// serverMetrics bundles the registry and the typed handles the hot path
// writes through (handles are resolved once here — request handling never
// does a by-name lookup).
type serverMetrics struct {
	reg *obs.Registry

	served    *obs.Counter      // all instrumented requests
	requests  *obs.CounterVec   // by endpoint
	responses *obs.CounterVec   // by status class (2xx/4xx/5xx)
	inFlight  *obs.Gauge        // instrumented requests currently in flight
	latency   *obs.HistogramVec // by endpoint; wall-clock

	engineRounds   *obs.CounterVec   // by endpoint
	engineMessages *obs.CounterVec   // by endpoint
	requestRounds  *obs.HistogramVec // by endpoint; engine rounds per request
	attempts       *obs.Counter
	faults         *obs.Counter
	degraded       *obs.Counter

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge
	cacheBytes     *obs.Gauge
	cacheBudget    *obs.Gauge
}

func newServerMetrics() *serverMetrics {
	r := obs.NewRegistry()
	return &serverMetrics{
		reg: r,
		served: r.Counter("distlapd_http_requests_served_total",
			"API requests served (all endpoints; per-endpoint counters sum to this)", true),
		requests: r.CounterVec("distlapd_http_requests_total",
			"API requests by endpoint", true, "endpoint"),
		responses: r.CounterVec("distlapd_http_responses_total",
			"API responses by status class", true, "class"),
		inFlight: r.Gauge("distlapd_http_in_flight",
			"API requests currently being served", true),
		latency: r.HistogramVec("distlapd_http_request_duration_seconds",
			"request handling latency by endpoint", false, "endpoint", obs.LatencyBuckets()),
		engineRounds: r.CounterVec("distlapd_engine_rounds_total",
			"simulated engine rounds charged to served requests, by endpoint", true, "endpoint"),
		engineMessages: r.CounterVec("distlapd_engine_messages_total",
			"simulated engine messages charged to served requests, by endpoint", true, "endpoint"),
		requestRounds: r.HistogramVec("distlapd_request_engine_rounds",
			"engine round cost per served result (one observation per right-hand side for batch solves), by endpoint",
			true, "endpoint", obs.PowerOfTwoBuckets(0, 20)),
		attempts: r.Counter("distlapd_solve_attempts_total",
			"solve attempts the recovery ladder executed (fault-injected requests)", true),
		faults: r.Counter("distlapd_faults_observed_total",
			"fault events observed by served requests' engines", true),
		degraded: r.Counter("distlapd_degraded_results_total",
			"requests whose result met only a degraded target", true),
		cacheHits: r.Counter("distlapd_cache_hits_total",
			"instance-cache lookups that found a prepared instance", true),
		cacheMisses: r.Counter("distlapd_cache_misses_total",
			"instance-cache lookups that missed", true),
		cacheEvictions: r.Counter("distlapd_cache_evictions_total",
			"instances evicted from the cache (budget pressure and explicit DELETE)", true),
		cacheEntries: r.Gauge("distlapd_cache_entries",
			"prepared instances currently cached", true),
		cacheBytes: r.Gauge("distlapd_cache_bytes",
			"estimated resident bytes of cached instances", true),
		cacheBudget: r.Gauge("distlapd_cache_budget_bytes",
			"instance-cache byte budget", true),
	}
}

// cacheStats returns the handle bundle the instance cache updates inline
// (under its own mutex, so hit/miss/eviction counts are exact even under
// concurrent load).
func (m *serverMetrics) cacheStats() cacheStats {
	return cacheStats{
		hits: m.cacheHits, misses: m.cacheMisses, evictions: m.cacheEvictions,
		entries: m.cacheEntries, bytes: m.cacheBytes,
	}
}

// recordEngine folds one served request's engine cost into the registry:
// the per-request linkage between the serving layer and the simulation
// metrics underneath it.
func (s *Server) recordEngine(endpoint string, m distlap.Metrics) {
	rounds := int64(m.TotalRounds())
	msgs := m.Congest.Messages
	if m.NCC != nil {
		msgs += m.NCC.Messages
	}
	s.met.engineRounds.With(endpoint).Add(rounds)
	s.met.engineMessages.With(endpoint).Add(msgs)
	s.met.requestRounds.With(endpoint).Observe(float64(rounds))
	if m.Attempts > 0 {
		s.met.attempts.Add(int64(m.Attempts))
	}
	if m.FaultsObserved > 0 {
		s.met.faults.Add(m.FaultsObserved)
	}
	if m.Degraded {
		s.met.degraded.Inc()
	}
}

// endpointOf classifies a request into the fixed endpoint label set by
// path shape (the mux's own routing decides what actually runs; this only
// labels metrics, so unknown shapes land in "other" rather than growing
// the label space).
func endpointOf(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case metricsPath:
		return epMetrics
	case statuszPath:
		return epStatusz
	case healthzPath:
		return epHealthz
	case "/v1/graphs":
		if r.Method == http.MethodGet {
			return epList
		}
		return epLoad
	}
	if rest, ok := strings.CutPrefix(p, "/v1/graphs/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i+1:] {
			case "solve":
				return epSolve
			case "flow":
				return epFlow
			case "mst":
				return epMST
			}
		} else if r.Method == http.MethodDelete {
			return epEvict
		}
	}
	return epOther
}

// observabilityEndpoint reports whether an endpoint label names a scrape /
// probe endpoint — exempt from instrumentation, admission control and the
// access log (and healthz additionally from the request deadline's cost:
// none of them run engine work).
func observabilityEndpoint(ep string) bool {
	return ep == epMetrics || ep == epStatusz || ep == epHealthz
}

// statusClass maps a status code to its metric class label.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusRecorder captures the status and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// instrument is the outermost middleware: it assigns the request ID
// (echoed as X-Request-Id, correlating responses to access-log lines),
// times the request, and records every metric the request generates —
// including 503s from the admission gate and 500s from panic recovery,
// which both run inside it. Observability endpoints pass through
// unrecorded: scrapes must not perturb what they read.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointOf(r)
		if observabilityEndpoint(ep) {
			next.ServeHTTP(w, r)
			return
		}
		id := "req-" + strconv.FormatInt(s.reqID.Add(1), 10)
		w.Header().Set("X-Request-Id", id)
		sr := &statusRecorder{ResponseWriter: w}
		s.met.inFlight.Add(1)
		start := time.Now()
		next.ServeHTTP(sr, r)
		dur := time.Since(start)
		s.met.inFlight.Add(-1)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		s.met.served.Inc()
		s.met.requests.With(ep).Inc()
		s.met.responses.With(statusClass(sr.status)).Inc()
		s.met.latency.With(ep).Observe(dur.Seconds())
		s.accessLog.Log(obs.AccessRecord{
			ID: id, Method: r.Method, Path: r.URL.Path, Endpoint: ep,
			Status: sr.status, BytesOut: sr.bytes, DurationMicros: dur.Microseconds(),
		})
	})
}

// handleMetrics serves the Prometheus text exposition: deterministic
// families, the obs.WallClockMarker line, then wall-clock families.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	_ = obs.WriteProm(&buf, s.met.reg.Snapshot()) // bytes.Buffer writes cannot fail
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// StatuszResponse is the body of GET /v1/statusz: the operator's one-page
// view, split into the deterministic fields (a pure function of the
// request sequence and seeds — byte-comparable across daemons) and the
// wall-clock fields (uptime, latency quantiles).
type StatuszResponse struct {
	Deterministic StatuszDeterministic `json:"deterministic"`
	WallClock     StatuszWallClock     `json:"wallclock"`
	Build         StatuszBuild         `json:"build"`
}

// StatuszDeterministic carries the determinism-gated counters.
type StatuszDeterministic struct {
	RequestsTotal      int64            `json:"requests_total"`
	RequestsByEndpoint map[string]int64 `json:"requests_by_endpoint"`
	ResponsesByClass   map[string]int64 `json:"responses_by_class"`
	EngineRounds       map[string]int64 `json:"engine_rounds_by_endpoint"`
	EngineMessages     map[string]int64 `json:"engine_messages_by_endpoint"`
	SolveAttempts      int64            `json:"solve_attempts_total"`
	FaultsObserved     int64            `json:"faults_observed_total"`
	DegradedResults    int64            `json:"degraded_results_total"`
	Cache              StatuszCache     `json:"cache"`
}

// StatuszCache is the cache-occupancy block (occupancy vs budget plus the
// cumulative accounting).
type StatuszCache struct {
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// StatuszWallClock carries the fields real time feeds.
type StatuszWallClock struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Latency       map[string]StatuszLatency `json:"latency_by_endpoint"`
}

// StatuszLatency is one endpoint's latency summary, quantiles estimated
// from the fixed-bucket histogram (obs.SeriesSnapshot.Quantile).
type StatuszLatency struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// StatuszBuild identifies the serving binary's toolchain.
type StatuszBuild struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	snap := s.met.reg.Snapshot()
	resp := StatuszResponse{
		Deterministic: StatuszDeterministic{
			RequestsTotal:      scalarValue(snap, "distlapd_http_requests_served_total"),
			RequestsByEndpoint: familyValues(snap, "distlapd_http_requests_total"),
			ResponsesByClass:   familyValues(snap, "distlapd_http_responses_total"),
			EngineRounds:       familyValues(snap, "distlapd_engine_rounds_total"),
			EngineMessages:     familyValues(snap, "distlapd_engine_messages_total"),
			SolveAttempts:      scalarValue(snap, "distlapd_solve_attempts_total"),
			FaultsObserved:     scalarValue(snap, "distlapd_faults_observed_total"),
			DegradedResults:    scalarValue(snap, "distlapd_degraded_results_total"),
			Cache: StatuszCache{
				Entries:     scalarValue(snap, "distlapd_cache_entries"),
				Bytes:       scalarValue(snap, "distlapd_cache_bytes"),
				BudgetBytes: scalarValue(snap, "distlapd_cache_budget_bytes"),
				Hits:        scalarValue(snap, "distlapd_cache_hits_total"),
				Misses:      scalarValue(snap, "distlapd_cache_misses_total"),
				Evictions:   scalarValue(snap, "distlapd_cache_evictions_total"),
			},
		},
		WallClock: StatuszWallClock{
			UptimeSeconds: time.Since(s.start).Seconds(),
			Latency:       latencyByEndpoint(snap),
		},
		Build: StatuszBuild{GoVersion: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH},
	}
	writeJSON(w, http.StatusOK, resp)
}

// scalarValue reads a scalar counter/gauge family from a snapshot.
func scalarValue(snap obs.Snapshot, name string) int64 {
	f, ok := snap.Family(name)
	if !ok || len(f.Series) == 0 {
		return 0
	}
	return f.Series[0].Value
}

// familyValues reads a labeled counter family into a map (encoding/json
// marshals map keys sorted, so the rendering stays byte-stable).
func familyValues(snap obs.Snapshot, name string) map[string]int64 {
	out := map[string]int64{}
	f, ok := snap.Family(name)
	if !ok {
		return out
	}
	for _, ser := range f.Series {
		out[ser.LabelValue] = ser.Value
	}
	return out
}

// latencyByEndpoint summarizes the latency histogram family as quantiles.
func latencyByEndpoint(snap obs.Snapshot) map[string]StatuszLatency {
	out := map[string]StatuszLatency{}
	f, ok := snap.Family("distlapd_http_request_duration_seconds")
	if !ok {
		return out
	}
	for _, ser := range f.Series {
		out[ser.LabelValue] = StatuszLatency{
			Count: ser.Count,
			P50ms: 1000 * ser.Quantile(0.50),
			P95ms: 1000 * ser.Quantile(0.95),
			P99ms: 1000 * ser.Quantile(0.99),
		}
	}
	return out
}
