package core
