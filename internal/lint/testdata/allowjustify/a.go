// Package allowjustify is a distlint fixture: suppression directives with
// and without the mandatory justification.
package allowjustify

import "math/rand"

// Unjustified suppresses seededrand but gives no reason: the directive
// itself is flagged (the seededrand finding stays suppressed).
func Unjustified() int {
	//distlint:allow seededrand
	return rand.Intn(3)
}

// Justified carries a reason: nothing flagged.
func Justified() int {
	//distlint:allow seededrand fixture: demonstrates the justified form
	return rand.Intn(3)
}

// Typo names an analyzer that does not exist: flagged (and suppresses
// nothing, so the seededrand finding also surfaces).
func Typo() int {
	//distlint:allow seedrand fixture: misspelled analyzer name
	return rand.Intn(3)
}

// Bare names no analyzer at all: flagged.
func Bare() int {
	//distlint:allow
	return rand.Intn(5) //distlint:allow seededrand fixture: the bare directive above suppresses nothing
}

// Meta suppresses the justifier itself — legal, but only with a reason.
func Meta() int {
	//distlint:allow allowjustify fixture: migration period for the directive below
	//distlint:allow seededrand
	return rand.Intn(7)
}
