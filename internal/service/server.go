package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"distlap"
	"distlap/internal/obs"
)

// DefaultCacheBytes is the instance-cache budget when Config.CacheBytes is
// zero: roomy enough for the experiment-scale graphs this repository
// simulates, small enough that a load test exercises eviction.
const DefaultCacheBytes int64 = 64 << 20

// Config configures a Server.
type Config struct {
	// CacheBytes bounds the summed SizeBytes of cached instances
	// (0 selects DefaultCacheBytes). One oversized instance may exceed it;
	// the budget bounds the herd.
	CacheBytes int64
	// MaxBodyBytes bounds every request body (0 selects
	// DefaultMaxBodyBytes); oversized bodies are rejected with a
	// structured 400 before JSON decoding reads past the cap.
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently served requests (0 selects
	// DefaultMaxInFlight); excess requests get 503 + Retry-After.
	MaxInFlight int
	// RequestTimeout bounds one request's wall time (0 selects
	// DefaultRequestTimeout); expiry surfaces as a retryable 503.
	RequestTimeout time.Duration
	// AccessLog, when non-nil, receives one JSONL record per served API
	// request (observability endpoints are not logged). The first write
	// error poisons the log; Server.AccessLogErr reports it.
	AccessLog io.Writer
}

// Server is the distlapd HTTP service: a JSON API over a byte-budgeted LRU
// cache of prepared solver instances.
//
//	POST   /v1/graphs             load a graph, prepare + cache its instance
//	GET    /v1/graphs             list cached instances (sorted by id)
//	DELETE /v1/graphs/{id}        evict one instance
//	POST   /v1/graphs/{id}/solve  solve one RHS or a multi-RHS batch
//	POST   /v1/graphs/{id}/flow   unit s-t electrical flow
//	POST   /v1/graphs/{id}/mst    distributed minimum spanning tree
//
// Handlers run concurrently under net/http; the cache is mutex-guarded and
// the instances themselves are immutable (concurrent solves are the point
// of the prepared-Instance API). Responses are deterministic: identical
// requests against identically-configured daemons are byte-identical.
type Server struct {
	cache      *instanceCache
	mux        *http.ServeMux
	maxBody    int64
	sem        chan struct{} // in-flight admission semaphore (harden.go)
	reqTimeout time.Duration

	met       *serverMetrics // serving-path metric registry (metrics.go)
	accessLog *obs.AccessLog // nil when access logging is disabled
	reqID     atomic.Int64   // request-ID source; "req-<n>" correlates log lines
	start     time.Time      // process start, for statusz uptime
}

// New returns a Server with its routes installed.
func New(cfg Config) *Server {
	budget := cfg.CacheBytes
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = DefaultMaxInFlight
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	met := newServerMetrics()
	met.cacheBudget.Set(budget)
	s := &Server{
		cache:      newInstanceCache(budget, met.cacheStats()),
		mux:        http.NewServeMux(),
		maxBody:    maxBody,
		sem:        make(chan struct{}, inFlight),
		reqTimeout: reqTimeout,
		met:        met,
		accessLog:  obs.NewAccessLog(cfg.AccessLog),
		start:      time.Now(),
	}
	s.mux.HandleFunc("POST /v1/graphs", s.handleLoad)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleEvict)
	s.mux.HandleFunc("POST /v1/graphs/{id}/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/graphs/{id}/flow", s.handleFlow)
	s.mux.HandleFunc("POST /v1/graphs/{id}/mst", s.handleMST)
	s.mux.HandleFunc("GET "+healthzPath, s.handleHealthz)
	s.mux.HandleFunc("GET "+metricsPath, s.handleMetrics)
	s.mux.HandleFunc("GET "+statuszPath, s.handleStatusz)
	return s
}

// Handler returns the Server's HTTP handler: the route mux wrapped in the
// hardening chain of harden.go (panic recovery, admission control,
// per-request deadlines), all inside the instrumentation middleware of
// metrics.go — outermost so the 500s panic recovery writes and the 503s
// the admission gate writes are counted like any other response.
func (s *Server) Handler() http.Handler { return s.instrument(s.harden(s.mux)) }

// AccessLogErr reports the access log's first write error (nil while
// healthy or when access logging is disabled).
func (s *Server) AccessLogErr() error { return s.accessLog.Err() }

// GraphSpec describes the graph to load: an explicit edge list or a named
// standard family with an approximate target size.
type GraphSpec struct {
	N      int        `json:"n,omitempty"`
	Edges  [][3]int64 `json:"edges,omitempty"` // [u, v, weight]
	Family string     `json:"family,omitempty"`
	Size   int        `json:"size,omitempty"`
}

func (gs *GraphSpec) build() (*distlap.Graph, error) {
	if gs.Family != "" {
		if gs.Size <= 0 {
			return nil, errors.New("family graphs need a positive size")
		}
		for _, f := range distlap.Families() {
			if f.Name == gs.Family {
				return f.Make(gs.Size), nil
			}
		}
		return nil, fmt.Errorf("unknown graph family %q", gs.Family)
	}
	if gs.N <= 0 {
		return nil, errors.New("graph needs n > 0 or a family")
	}
	g := distlap.NewGraph(gs.N)
	for i, e := range gs.Edges {
		if _, err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return g, nil
}

// LoadRequest is the body of POST /v1/graphs.
type LoadRequest struct {
	ID        string    `json:"id"`
	Graph     GraphSpec `json:"graph"`
	Mode      string    `json:"mode,omitempty"` // universal|congest|baseline|hybrid
	Eps       float64   `json:"eps,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Chebyshev bool      `json:"chebyshev,omitempty"`
	Lo        float64   `json:"lo,omitempty"`
	Hi        float64   `json:"hi,omitempty"`
}

// LoadResponse reports the prepared instance and any cache evictions the
// load forced.
type LoadResponse struct {
	Instance InstanceInfo `json:"instance"`
	Evicted  []string     `json:"evicted,omitempty"`
}

func parseMode(s string) (distlap.Mode, error) {
	switch distlap.Mode(s) {
	case "":
		return distlap.ModeUniversal, nil
	case distlap.ModeUniversal, distlap.ModeCongest, distlap.ModeBaseline, distlap.ModeHybrid:
		return distlap.Mode(s), nil
	}
	return "", fmt.Errorf("unknown mode %q", s)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "instance id is required")
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	g, err := req.Graph.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts := []distlap.Option{distlap.WithMode(mode), distlap.WithSeed(req.Seed)}
	if req.Eps > 0 {
		opts = append(opts, distlap.WithEps(req.Eps))
	}
	if req.Chebyshev {
		opts = append(opts, distlap.WithChebyshev(req.Lo, req.Hi))
	}
	inst, err := distlap.NewSolver(opts...).Prepare(r.Context(), g)
	if err != nil {
		writeSolveError(w, r, err)
		return
	}
	setup := inst.SetupMetrics()
	s.recordEngine(epLoad, setup)
	info := InstanceInfo{
		ID:            req.ID,
		Nodes:         g.N(),
		Edges:         g.M(),
		Mode:          string(mode),
		Eps:           effEps(req.Eps),
		Seed:          req.Seed,
		SizeBytes:     inst.SizeBytes(),
		SetupRounds:   setup.TotalRounds(),
		SetupMessages: setup.Congest.Messages,
	}
	evicted := s.cache.put(req.ID, inst, info)
	writeJSON(w, http.StatusOK, LoadResponse{Instance: info, Evicted: evicted})
}

func effEps(eps float64) float64 {
	if eps > 0 {
		return eps
	}
	return 1e-8
}

// ListResponse is the body of GET /v1/graphs.
type ListResponse struct {
	Instances  []InstanceInfo `json:"instances"`
	TotalBytes int64          `json:"total_bytes"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	list := s.cache.list()
	if list == nil {
		list = []InstanceInfo{}
	}
	writeJSON(w, http.StatusOK, ListResponse{Instances: list, TotalBytes: s.cache.totalBytes()})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.cache.evict(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no instance %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

// SolveRequest is the body of POST /v1/graphs/{id}/solve: one RHS in B, or
// a multi-RHS batch in Batch (exactly one of the two). Seed, when present,
// pins the engine seed for the request (all RHS of a batch); otherwise
// seeds derive deterministically from the instance seed and the RHS index.
type SolveRequest struct {
	B     []float64   `json:"b,omitempty"`
	Batch [][]float64 `json:"bs,omitempty"`
	Eps   float64     `json:"eps,omitempty"`
	Seed  *int64      `json:"seed,omitempty"`
}

// SolveResult is one right-hand side's outcome.
type SolveResult struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
	Rounds     int       `json:"rounds"`
	Messages   int64     `json:"messages"`
}

// SolveResponse is the body of a successful solve. Results has one entry
// per right-hand side (a single B behaves as a batch of one).
type SolveResponse struct {
	Results []SolveResult `json:"results"`
}

func requestOpts(eps float64, seed *int64) []distlap.ReqOption {
	var opts []distlap.ReqOption
	if eps > 0 {
		opts = append(opts, distlap.WithRequestEps(eps))
	}
	if seed != nil {
		opts = append(opts, distlap.WithRequestSeed(*seed))
	}
	return opts
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if (len(req.B) == 0) == (len(req.Batch) == 0) {
		writeError(w, http.StatusBadRequest, "provide exactly one of b or bs")
		return
	}
	bs := req.Batch
	if len(bs) == 0 {
		bs = [][]float64{req.B}
	}
	results, err := inst.SolveBatch(r.Context(), bs, requestOpts(req.Eps, req.Seed)...)
	if err != nil {
		writeSolveError(w, r, err)
		return
	}
	resp := SolveResponse{Results: make([]SolveResult, len(results))}
	for i, res := range results {
		s.recordEngine(epSolve, res.Metrics)
		resp.Results[i] = SolveResult{
			X:          res.X,
			Iterations: res.Iterations,
			Residual:   res.Residual,
			Rounds:     res.Rounds,
			Messages:   res.Metrics.Congest.Messages,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// FlowRequest is the body of POST /v1/graphs/{id}/flow.
type FlowRequest struct {
	S    int     `json:"s"`
	T    int     `json:"t"`
	Eps  float64 `json:"eps,omitempty"`
	Seed *int64  `json:"seed,omitempty"`
}

// FlowResponse reports a unit s-t electrical flow.
type FlowResponse struct {
	Resistance float64 `json:"resistance"`
	Iterations int     `json:"iterations"`
	Rounds     int     `json:"rounds"`
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var req FlowRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	fl, err := inst.Flow(r.Context(), req.S, req.T, requestOpts(req.Eps, req.Seed)...)
	if err != nil {
		writeSolveError(w, r, err)
		return
	}
	s.recordEngine(epFlow, fl.Metrics)
	writeJSON(w, http.StatusOK, FlowResponse{
		Resistance: fl.Resistance,
		Iterations: fl.Iterations,
		Rounds:     fl.Rounds,
	})
}

// MSTRequest is the body of POST /v1/graphs/{id}/mst.
type MSTRequest struct {
	Seed *int64 `json:"seed,omitempty"`
}

// MSTResponse reports a distributed minimum-spanning-tree run.
type MSTResponse struct {
	Weight int64 `json:"weight"`
	Edges  []int `json:"edges"`
	Phases int   `json:"phases"`
	Rounds int   `json:"rounds"`
}

func (s *Server) handleMST(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instance(w, r)
	if !ok {
		return
	}
	var req MSTRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	res, err := inst.MST(r.Context(), requestOpts(0, req.Seed)...)
	if err != nil {
		writeSolveError(w, r, err)
		return
	}
	s.recordEngine(epMST, res.Metrics)
	edges := res.Edges
	if edges == nil {
		edges = []int{}
	}
	writeJSON(w, http.StatusOK, MSTResponse{
		Weight: res.Weight,
		Edges:  edges,
		Phases: res.Phases,
		Rounds: res.Rounds,
	})
}

// instance resolves the {id} path value against the cache, writing the 404
// itself when absent.
func (s *Server) instance(w http.ResponseWriter, r *http.Request) (*distlap.Instance, bool) {
	id := r.PathValue("id")
	inst, ok := s.cache.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no instance %q", id))
		return nil, false
	}
	return inst, true
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// decodeBody decodes a JSON request body under the server's hardening
// rules: the body is capped at maxBody bytes (http.MaxBytesReader — an
// oversized payload is rejected after reading at most the cap, with a
// structured 400 naming the limit) and unknown fields are rejected (a
// typo'd field silently ignored would return a confidently wrong answer).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusBadRequest,
				"request body exceeds "+s.maxBytesHint()+" bytes")
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// writeSolveError maps engine errors to HTTP statuses. A request whose
// deadline (the server's own RequestTimeout) expired answers a retryable
// 503 with Retry-After — the server ran out of patience, not the client.
// A context the client cancelled answers 408 (499's closest standard
// cousin). Everything else is a 400: all remaining engine failures are
// input-shaped (bad RHS, bad terminals, disconnected graphs, or a fault
// plan the recovery ladder could not verify a result under).
func writeSolveError(w http.ResponseWriter, r *http.Request, err error) {
	if ctxErr := r.Context().Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusServiceUnavailable, "request deadline exceeded")
			return
		}
		writeError(w, http.StatusRequestTimeout, ctxErr.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// writeJSON emits one deterministic JSON body: encoding/json marshals
// struct fields in declaration order and formats floats canonically, so
// identical payloads are byte-identical across processes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		// The client went away mid-write; nothing sensible to do.
		return
	}
}
