package apps

import (
	"math"
	"testing"
	"testing/quick"

	"distlap/internal/congest"
	"distlap/internal/core"
	"distlap/internal/graph"
	"distlap/internal/partwise"
)

func newNet(g *graph.Graph) *congest.Network {
	return congest.NewNetwork(g, congest.Options{Seed: 1, Supported: true})
}

func TestMSTMatchesKruskal(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid(4, 5),
		graph.RandomConnected(40, 40, 20, 3),
		graph.Cycle(9),
		graph.Caterpillar(6, 2),
	}
	for _, g := range graphs {
		_, wantW := graph.MST(g)
		for _, solver := range []partwise.Solver{
			partwise.NaiveGlobalSolver{},
			partwise.NewShortcutSolver(),
		} {
			nw := newNet(g)
			res, err := MST(nw, solver)
			if err != nil {
				t.Fatalf("%s: %v", solver.Name(), err)
			}
			if res.Weight != wantW {
				t.Fatalf("%s: weight=%d, want %d", solver.Name(), res.Weight, wantW)
			}
			if len(res.Edges) != g.N()-1 {
				t.Fatalf("%s: %d edges for n=%d", solver.Name(), len(res.Edges), g.N())
			}
			if res.Phases > 2*log2(g.N())+1 {
				t.Fatalf("%s: %d Borůvka phases", solver.Name(), res.Phases)
			}
			if res.Rounds <= 0 {
				t.Fatal("no rounds charged")
			}
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	nw := newNet(g)
	if _, err := MST(nw, partwise.NaiveGlobalSolver{}); err == nil {
		t.Fatal("want disconnected error")
	}
}

func TestMSTEmptyAndSingle(t *testing.T) {
	nwEmpty := newNet(graph.New(0))
	if res, err := MST(nwEmpty, partwise.NaiveGlobalSolver{}); err != nil || len(res.Edges) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	nw1 := newNet(graph.New(1))
	res, err := MST(nw1, partwise.NaiveGlobalSolver{})
	if err != nil || len(res.Edges) != 0 {
		t.Fatalf("single: %v %v", res, err)
	}
}

func TestEncodeDecodeEdge(t *testing.T) {
	for _, w := range []int64{1, 5, 1000000} {
		for _, id := range []graph.EdgeID{0, 7, 1 << 20} {
			if got := decodeEdge(encodeEdge(w, id)); got != id {
				t.Fatalf("roundtrip (%d,%d) -> %d", w, id, got)
			}
		}
	}
	if encodeEdge(2, 0) <= encodeEdge(1, 1<<30) {
		t.Fatal("weight must dominate ordering")
	}
}

func TestSpanningViaPWA(t *testing.T) {
	g := graph.Grid(4, 4)
	full, _ := graph.MST(g)
	nw := newNet(g)
	res, err := SpanningConnectedViaPWA(nw, full, partwise.NewShortcutSolver())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("spanning tree should be connected")
	}
	// Drop one tree edge: disconnected.
	nw2 := newNet(g)
	res2, err := SpanningConnectedViaPWA(nw2, full[1:], partwise.NewShortcutSolver())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Connected {
		t.Fatal("tree minus an edge should be disconnected")
	}
}

func TestSpanningViaLaplacianTheorem1(t *testing.T) {
	g := graph.Grid(4, 4)
	mst, _ := graph.MST(g)

	res, err := SpanningConnectedViaLaplacian(g, mst, core.ModeUniversal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("connected subgraph misclassified")
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}

	// Disconnect by removing an edge whose endpoints keep positive degree:
	// remove a middle tree edge; if some node isolates, that is the local
	// short-circuit path, which is also correct — pick robustly.
	for drop := range mst {
		edges := append(append([]graph.EdgeID{}, mst[:drop]...), mst[drop+1:]...)
		res2, err := SpanningConnectedViaLaplacian(g, edges, core.ModeUniversal, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Connected {
			t.Fatalf("dropping edge %d: still classified connected", drop)
		}
	}
}

func TestSpanningViaLaplacianAgreesWithPWA(t *testing.T) {
	f := func(seed int64, drop uint8) bool {
		g := graph.RandomConnected(14, 8, 1, seed)
		mst, _ := graph.MST(g)
		edges := mst
		if int(drop)%2 == 1 && len(mst) > 1 {
			d := int(drop) % len(mst)
			edges = append(append([]graph.EdgeID{}, mst[:d]...), mst[d+1:]...)
		}
		nw := newNet(g)
		a, err := SpanningConnectedViaPWA(nw, edges, partwise.NewShortcutSolver())
		if err != nil {
			return false
		}
		b, err := SpanningConnectedViaLaplacian(g, edges, core.ModeUniversal, seed)
		if err != nil {
			return false
		}
		return a.Connected == b.Connected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestElectricalFlowPath(t *testing.T) {
	// On a unit path of length 3, R_eff(0, 3) = 3 and the unit current
	// crosses every edge.
	g := graph.Path(4)
	el := &Electrical{G: g, Mode: core.ModeUniversal, Seed: 1}
	res, err := el.Flow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Resistance-3) > 1e-5 {
		t.Fatalf("R_eff=%v, want 3", res.Resistance)
	}
	for id, c := range res.EdgeCurrent {
		if math.Abs(math.Abs(c)-1) > 1e-5 {
			t.Fatalf("edge %d current %v, want ±1", id, c)
		}
	}
	div := res.FlowDivergence(g)
	if math.Abs(div[0]-1) > 1e-5 || math.Abs(div[3]+1) > 1e-5 || math.Abs(div[1]) > 1e-5 {
		t.Fatalf("divergence=%v", div)
	}
}

func TestElectricalParallelEdgesResistance(t *testing.T) {
	// Two parallel unit edges: R_eff = 1/2.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 1)
	el := &Electrical{G: g, Mode: core.ModeUniversal, Seed: 2}
	r, err := el.EffectiveResistance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-5 {
		t.Fatalf("R_eff=%v, want 0.5", r)
	}
}

func TestElectricalBadArgs(t *testing.T) {
	el := &Electrical{G: graph.Path(3), Mode: core.ModeUniversal}
	if _, err := el.Flow(0, 0); err == nil {
		t.Fatal("want s==t error")
	}
	if _, err := el.Flow(0, 9); err == nil {
		t.Fatal("want range error")
	}
}

// Property: effective resistance on random graphs is symmetric and obeys
// the triangle inequality R(s,t) <= R(s,m) + R(m,t).
func TestEffectiveResistanceMetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomConnected(12, 8, 2, seed)
		el := &Electrical{G: g, Mode: core.ModeUniversal, Seed: seed, Tol: 1e-10}
		rst, err := el.EffectiveResistance(0, 5)
		if err != nil {
			return false
		}
		rts, err := el.EffectiveResistance(5, 0)
		if err != nil {
			return false
		}
		rsm, err := el.EffectiveResistance(0, 3)
		if err != nil {
			return false
		}
		rmt, err := el.EffectiveResistance(3, 5)
		if err != nil {
			return false
		}
		return math.Abs(rst-rts) < 1e-6 && rst <= rsm+rmt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
