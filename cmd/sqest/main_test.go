package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	if err := run([]string{"-n", "36", "-p", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoLayering(t *testing.T) {
	if err := run([]string{"-n", "25", "-p", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSize(t *testing.T) {
	if err := run([]string{"-n", "abc"}); err == nil {
		t.Fatal("want size error")
	}
}
