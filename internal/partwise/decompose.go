package partwise

import (
	"fmt"

	"distlap/internal/graph"
)

// decomposedPath is one heavy path of one part's spanning tree. Heavy-path
// decomposition realizes the reduction from general parts to path-restricted
// parts (Lemma 15, following [29]): every node lies on exactly one path of
// each part containing it, and the path tree has depth O(log |part|), so a
// p-congested general instance becomes O(log n) path-restricted batches of
// node congestion at most p.
type decomposedPath struct {
	part  int // index of the owning part
	level int // depth in the path tree; the root path has level 0
	nodes []graph.NodeID
	edges []graph.EdgeID // G edges joining consecutive nodes

	attach     graph.NodeID // tree parent of nodes[0]; -1 for level 0
	attachEdge graph.EdgeID // G edge nodes[0]-attach; -1 for level 0
}

// decomposePart heavy-path-decomposes the BFS spanning tree of the part.
func decomposePart(g *graph.Graph, part []graph.NodeID, partIdx int) ([]decomposedPath, error) {
	tr := graph.BFSTreeOfSubgraph(g, part, nil, part[0])
	if len(tr.Members) != len(part) {
		return nil, fmt.Errorf("partwise: part %d not induced-connected", partIdx)
	}
	children := tr.Children()
	// Subtree sizes via reverse BFS order.
	size := make(map[graph.NodeID]int, len(part))
	for i := len(tr.Members) - 1; i >= 0; i-- {
		v := tr.Members[i]
		s := 1
		for _, c := range children[v] {
			s += size[c]
		}
		size[v] = s
	}
	heavy := make(map[graph.NodeID]graph.NodeID, len(part))
	for _, v := range tr.Members {
		best, bestSize := graph.NodeID(-1), -1
		for _, c := range children[v] {
			if size[c] > bestSize {
				best, bestSize = c, size[c]
			}
		}
		heavy[v] = best
	}

	var paths []decomposedPath
	type start struct {
		node  graph.NodeID
		level int
	}
	stack := []start{{node: tr.Root, level: 0}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		dp := decomposedPath{
			part:       partIdx,
			level:      st.level,
			attach:     tr.Parent[st.node],
			attachEdge: tr.ParentEdge[st.node],
		}
		v := st.node
		for v != -1 {
			dp.nodes = append(dp.nodes, v)
			if h := heavy[v]; h != -1 {
				dp.edges = append(dp.edges, tr.ParentEdge[h])
			}
			for _, c := range children[v] {
				if c != heavy[v] {
					stack = append(stack, start{node: c, level: st.level + 1})
				}
			}
			v = heavy[v]
		}
		paths = append(paths, dp)
	}
	return paths, nil
}

// maxPathLevel returns the deepest path-tree level in the slice.
func maxPathLevel(paths []decomposedPath) int {
	max := 0
	for _, p := range paths {
		if p.level > max {
			max = p.level
		}
	}
	return max
}
