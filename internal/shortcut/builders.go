package shortcut

import (
	"fmt"

	"distlap/internal/graph"
)

// TrivialBuilder produces the empty shortcut H_i = ∅: dilation is the
// maximum part diameter, congestion 0. Optimal whenever parts are already
// low-diameter (e.g. grid rows), and the baseline every other builder must
// beat.
type TrivialBuilder struct{}

var _ Builder = TrivialBuilder{}

// Name implements Builder.
func (TrivialBuilder) Name() string { return "trivial" }

// Build implements Builder.
func (TrivialBuilder) Build(g *graph.Graph, parts [][]graph.NodeID) (*Shortcut, error) {
	s := &Shortcut{
		Parts:   parts,
		Extra:   make([][]graph.EdgeID, len(parts)),
		Builder: "trivial",
	}
	if err := Verify(g, s); err != nil {
		return nil, err
	}
	return s, nil
}

// SteinerBuilder is the tree-restricted construction in the spirit of
// Ghaffari–Haeupler: fix a BFS tree T of G rooted at a low-eccentricity
// node; H_i is the Steiner subtree of P_i in T (the union of T-paths
// between members). Dilation is then at most 2·height(T) ≤ 2D̃, and the
// congestion on each tree edge is the number of parts whose Steiner subtree
// crosses it, which the certificate measures exactly.
type SteinerBuilder struct {
	// Root overrides the tree root; -1 (or zero value via NewSteinerBuilder)
	// selects a double-sweep center heuristic.
	Root graph.NodeID
}

var _ Builder = SteinerBuilder{}

// NewSteinerBuilder returns a SteinerBuilder with automatic root selection.
func NewSteinerBuilder() SteinerBuilder { return SteinerBuilder{Root: -1} }

// Name implements Builder.
func (SteinerBuilder) Name() string { return "steiner-tree" }

// Build implements Builder.
func (b SteinerBuilder) Build(g *graph.Graph, parts [][]graph.NodeID) (*Shortcut, error) {
	if err := ValidateParts(g, parts); err != nil {
		return nil, err
	}
	root := b.Root
	if root < 0 || root >= g.N() {
		root = centerHeuristic(g)
	}
	tree := graph.BFSTree(g, root)
	if len(tree.Members) != g.N() {
		return nil, fmt.Errorf("shortcut: graph disconnected from root %d", root)
	}
	s := &Shortcut{
		Parts:   parts,
		Extra:   make([][]graph.EdgeID, len(parts)),
		Builder: "steiner-tree",
	}
	for i, p := range parts {
		s.Extra[i] = steinerSubtreeEdges(tree, p)
	}
	if err := Verify(g, s); err != nil {
		return nil, err
	}
	return s, nil
}

// steinerSubtreeEdges returns the tree edges of the minimal subtree of tree
// spanning terminals: every edge on a path from a terminal up to the
// "meeting point" (the highest node at which all terminal-to-root paths have
// merged). Implemented by walking each terminal upward, stopping when
// reaching an already-marked node; the union of walked edges, pruned so the
// subtree does not extend above the shallowest meeting node, is the Steiner
// subtree.
func steinerSubtreeEdges(tree *graph.Tree, terminals []graph.NodeID) []graph.EdgeID {
	if len(terminals) <= 1 {
		return nil
	}
	// Mark upward paths.
	marked := make(map[graph.NodeID]bool, len(terminals)*2)
	var edges []graph.EdgeID
	parentEdgeOf := make(map[graph.NodeID]graph.EdgeID)
	for _, t := range terminals {
		v := t
		for !marked[v] {
			marked[v] = true
			p := tree.Parent[v]
			if p == -1 {
				break
			}
			parentEdgeOf[v] = tree.ParentEdge[v]
			v = p
		}
	}
	// The union of upward paths forms a subtree rooted at the highest
	// marked node; prune marked nodes of degree 1 (within the subtree)
	// that are not terminals, from the top down, to cut the surplus path
	// above the meeting point.
	isTerminal := make(map[graph.NodeID]bool, len(terminals))
	for _, t := range terminals {
		isTerminal[t] = true
	}
	// Walked nodes in sorted order: both the meeting-node scan and the
	// emitted edge list must not depend on map iteration order (edge-list
	// order feeds BFS tie-breaking downstream).
	walked := make([]graph.NodeID, 0, len(parentEdgeOf))
	for v := range parentEdgeOf {
		walked = append(walked, v)
	}
	sortNodeIDs(walked)
	childCount := make(map[graph.NodeID]int)
	for _, v := range walked {
		if marked[tree.Parent[v]] {
			childCount[tree.Parent[v]]++
		}
	}
	// The union of upward walks is a subtree containing the root; only a
	// single chain can extend above the true meeting point. The meeting
	// node is the minimum-depth marked node that is a terminal or has at
	// least two marked children; every marked edge strictly above it is
	// surplus and dropped.
	meet := graph.NodeID(-1)
	for _, v := range keys(marked) {
		if isTerminal[v] || childCount[v] >= 2 {
			if meet == -1 || tree.Depth[v] < tree.Depth[meet] {
				meet = v
			}
		}
	}
	for _, v := range walked {
		if meet != -1 && tree.Depth[v] <= tree.Depth[meet] {
			continue // edge from v to its parent lies above the meeting node
		}
		edges = append(edges, parentEdgeOf[v])
	}
	return edges
}

// centerHeuristic returns a low-eccentricity node (see graph.ApproxCenter).
func centerHeuristic(g *graph.Graph) graph.NodeID { return graph.ApproxCenter(g) }

// PortfolioBuilder runs every inner builder and keeps the best (smallest
// quality) verified shortcut. Its achieved quality is the repository's
// empirical upper bound on the instance's shortcut quality.
type PortfolioBuilder struct {
	Builders []Builder
}

var _ Builder = PortfolioBuilder{}

// DefaultPortfolio returns the fast portfolio (trivial + Steiner-tree),
// used on the hot path of the part-wise aggregation solvers.
func DefaultPortfolio() PortfolioBuilder {
	return PortfolioBuilder{Builders: []Builder{TrivialBuilder{}, NewSteinerBuilder()}}
}

// WidePortfolio additionally runs the multi-scale region construction —
// more construction work for a tighter quality upper bound; used by the
// shortcut-quality estimator.
func WidePortfolio() PortfolioBuilder {
	return PortfolioBuilder{Builders: []Builder{
		TrivialBuilder{}, NewSteinerBuilder(), NewRegionBuilder(),
	}}
}

// Name implements Builder.
func (PortfolioBuilder) Name() string { return "portfolio" }

// Build implements Builder.
func (b PortfolioBuilder) Build(g *graph.Graph, parts [][]graph.NodeID) (*Shortcut, error) {
	var best *Shortcut
	var firstErr error
	for _, inner := range b.Builders {
		s, err := inner.Build(g, parts)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", inner.Name(), err)
			}
			continue
		}
		if best == nil || s.Quality() < best.Quality() {
			best = s
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}
